#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"

namespace ftbb::sim {
namespace {

TEST(Kernel, DispatchesInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.at(3.0, [&] { order.push_back(3); });
  k.at(1.0, [&] { order.push_back(1); });
  k.at(2.0, [&] { order.push_back(2); });
  const auto res = k.run();
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.events, 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, TiesBreakByInsertionOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    k.at(1.0, [&order, i] { order.push_back(i); });
  }
  k.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, NowAdvancesToEventTime) {
  Kernel k;
  double seen = -1.0;
  k.at(5.5, [&] { seen = k.now(); });
  k.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(k.now(), 5.5);
}

TEST(Kernel, HandlersCanScheduleMore) {
  Kernel k;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) k.after(1.0, chain);
  };
  k.after(1.0, chain);
  const auto res = k.run();
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(k.now(), 5.0);
}

TEST(Kernel, ZeroDelaySameTimeRunsAfterCurrent) {
  Kernel k;
  std::vector<int> order;
  k.at(1.0, [&] {
    order.push_back(1);
    k.after(0.0, [&] { order.push_back(2); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, TimeLimitStopsBeforeEvent) {
  Kernel k;
  int fired = 0;
  k.at(1.0, [&] { ++fired; });
  k.at(10.0, [&] { ++fired; });
  const auto res = k.run(5.0);
  EXPECT_TRUE(res.hit_time_limit);
  EXPECT_FALSE(res.drained);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.queued(), 1u);
}

TEST(Kernel, EventLimitStops) {
  Kernel k;
  std::function<void()> forever = [&] { k.after(1.0, forever); };
  k.after(1.0, forever);
  const auto res = k.run(1e18, 100);
  EXPECT_TRUE(res.hit_event_limit);
  EXPECT_EQ(res.events, 100u);
}

TEST(KernelDeath, SchedulingIntoThePastAborts) {
  Kernel k;
  k.at(5.0, [&] { k.at(1.0, [] {}); });
  ASSERT_DEATH(k.run(), "scheduling into the past");
}

}  // namespace
}  // namespace ftbb::sim
