#include <gtest/gtest.h>

#include <algorithm>

#include "gossip/membership.hpp"
#include "gossip/view.hpp"

namespace ftbb::gossip {
namespace {

// ---------------------------------------------------------------------------
// MembershipView
// ---------------------------------------------------------------------------

TEST(View, ObserveInsertsAndRefreshes) {
  MembershipView v;
  EXPECT_TRUE(v.observe(1, 5, 0.0));
  EXPECT_TRUE(v.contains(1));
  EXPECT_FALSE(v.observe(1, 5, 1.0));  // same heartbeat: no refresh
  EXPECT_FALSE(v.observe(1, 4, 1.0));  // older: ignored
  EXPECT_TRUE(v.observe(1, 6, 1.0));
  EXPECT_DOUBLE_EQ(v.entries().at(1).last_refresh, 1.0);
}

TEST(View, MergeTakesMaxHeartbeat) {
  MembershipView v;
  v.observe(1, 5, 0.0);
  v.observe(2, 3, 0.0);
  const std::size_t refreshed = v.merge({{1, 9}, {2, 2}, {3, 1}}, 2.0);
  EXPECT_EQ(refreshed, 2u);  // 1 refreshed, 3 new; 2 stale
  EXPECT_EQ(v.entries().at(1).beat, 9u);
  EXPECT_EQ(v.entries().at(2).beat, 3u);
  EXPECT_TRUE(v.contains(3));
}

TEST(View, MergeIsIdempotent) {
  MembershipView v;
  const std::vector<Heartbeat> digest = {{1, 5}, {2, 3}};
  v.merge(digest, 0.0);
  EXPECT_EQ(v.merge(digest, 1.0), 0u);
}

TEST(View, PruneDropsSilentMembers) {
  MembershipView v;
  v.observe(1, 1, 0.0);
  v.observe(2, 1, 5.0);
  const auto dropped = v.prune(8.0, 3.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 1u);
  EXPECT_FALSE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
}

TEST(View, HigherHeartbeatResurrectsDropped) {
  MembershipView v;
  v.observe(1, 7, 0.0);
  v.prune(100.0, 1.0);
  EXPECT_FALSE(v.contains(1));
  EXPECT_EQ(v.dropped_beat(1), 7u);
  EXPECT_TRUE(v.observe(1, 8, 101.0));  // a false positive heals itself
  EXPECT_TRUE(v.contains(1));
  EXPECT_EQ(v.dropped_beat(1), std::nullopt);
}

TEST(View, StaleGossipCannotResurrectTheDead) {
  // The classic epidemic-resurrection hazard: after a member is dropped,
  // its old heartbeats keep circulating in other members' digests. They
  // must not re-add it.
  MembershipView v;
  v.observe(1, 7, 0.0);
  v.prune(100.0, 1.0);
  EXPECT_FALSE(v.observe(1, 7, 101.0));
  EXPECT_FALSE(v.observe(1, 3, 102.0));
  EXPECT_FALSE(v.contains(1));
}

TEST(View, DigestRoundTrip) {
  MembershipView v;
  v.observe(3, 10, 0.0);
  v.observe(1, 20, 0.0);
  support::ByteWriter w;
  MembershipView::encode_digest(v.digest(), w);
  support::ByteReader r(w.data());
  const auto decoded = MembershipView::decode_digest(r);
  EXPECT_EQ(decoded, v.digest());
  EXPECT_TRUE(r.done());
}

TEST(View, MembersSortedAscending) {
  MembershipView v;
  v.observe(9, 1, 0.0);
  v.observe(2, 1, 0.0);
  v.observe(5, 1, 0.0);
  EXPECT_EQ(v.members(), (std::vector<MemberId>{2, 5, 9}));
}

// ---------------------------------------------------------------------------
// MembershipSim (E12 machinery)
// ---------------------------------------------------------------------------

std::vector<MemberScript> all_join_at_zero(std::uint32_t n) {
  std::vector<MemberScript> scripts;
  for (std::uint32_t i = 0; i < n; ++i) {
    MemberScript script;
    script.id = i;
    scripts.push_back(script);
  }
  return scripts;
}

TEST(Membership, ViewsConvergeToFullGroup) {
  MembershipConfig cfg;
  const auto result =
      MembershipSim::run(all_join_at_zero(12), cfg, sim::NetConfig{}, 20.0, 1);
  ASSERT_EQ(result.final_views.size(), 12u);
  for (const auto& [id, view] : result.final_views) {
    EXPECT_EQ(view.size(), 12u) << "member " << id;
  }
  EXPECT_EQ(result.metrics.false_positives, 0u);
}

TEST(Membership, LateJoinerPropagatesThroughServers) {
  auto scripts = all_join_at_zero(8);
  MemberScript joiner;
  joiner.id = 8;
  joiner.join_time = 10.0;
  scripts.push_back(joiner);
  MembershipConfig cfg;
  const auto result = MembershipSim::run(scripts, cfg, sim::NetConfig{}, 30.0, 2);
  for (const auto& [id, view] : result.final_views) {
    EXPECT_TRUE(std::find(view.begin(), view.end(), 8u) != view.end())
        << "member " << id << " never learned of the joiner";
  }
  EXPECT_GT(result.metrics.join_latency.count(), 0u);
}

TEST(Membership, CrashIsDetectedWithinTimeoutWindow) {
  auto scripts = all_join_at_zero(10);
  scripts[6].crash_time = 10.0;
  MembershipConfig cfg;
  cfg.gossip_interval = 0.5;
  cfg.fail_timeout = 4.0;
  const auto result = MembershipSim::run(scripts, cfg, sim::NetConfig{}, 40.0, 3);
  // Every live member eventually drops the victim.
  for (const auto& [id, view] : result.final_views) {
    EXPECT_TRUE(std::find(view.begin(), view.end(), 6u) == view.end())
        << "member " << id << " still lists the crashed member";
  }
  ASSERT_GT(result.metrics.detection_latency.count(), 0u);
  EXPECT_GE(result.metrics.detection_latency.min(), cfg.fail_timeout * 0.9);
  EXPECT_LE(result.metrics.detection_latency.max(),
            cfg.fail_timeout + 12 * cfg.gossip_interval);
}

TEST(Membership, SurvivesMessageLoss) {
  auto scripts = all_join_at_zero(10);
  scripts[3].crash_time = 8.0;
  MembershipConfig cfg;
  sim::NetConfig net;
  net.loss_prob = 0.2;
  const auto result = MembershipSim::run(scripts, cfg, net, 60.0, 4);
  for (const auto& [id, view] : result.final_views) {
    EXPECT_TRUE(std::find(view.begin(), view.end(), 3u) == view.end());
    EXPECT_EQ(view.size(), 9u);
  }
}

TEST(Membership, AccuracyHighAtSteadyState) {
  MembershipConfig cfg;
  const auto result =
      MembershipSim::run(all_join_at_zero(16), cfg, sim::NetConfig{}, 30.0, 5);
  EXPECT_GT(result.metrics.accuracy.mean(), 0.9);
}

TEST(Membership, NetworkLoadScalesWithGroupAndFanout) {
  MembershipConfig one;
  one.fanout = 1;
  MembershipConfig two;
  two.fanout = 2;
  const auto a = MembershipSim::run(all_join_at_zero(10), one, sim::NetConfig{}, 20.0, 6);
  const auto b = MembershipSim::run(all_join_at_zero(10), two, sim::NetConfig{}, 20.0, 6);
  // Twice the fanout, roughly twice the digests.
  EXPECT_GT(b.metrics.digests_sent, a.metrics.digests_sent * 3 / 2);
  // Digest size grows with group size -> bytes per digest ~ linear in n.
  const auto small =
      MembershipSim::run(all_join_at_zero(4), one, sim::NetConfig{}, 20.0, 7);
  const double bytes_per_digest_small =
      static_cast<double>(small.metrics.digest_bytes) /
      static_cast<double>(small.metrics.digests_sent);
  const double bytes_per_digest_large =
      static_cast<double>(a.metrics.digest_bytes) /
      static_cast<double>(a.metrics.digests_sent);
  EXPECT_GT(bytes_per_digest_large, bytes_per_digest_small * 1.5);
}

TEST(Membership, GracefulLeaveDisappearsFromViews) {
  auto scripts = all_join_at_zero(8);
  scripts[5].leave_time = 6.0;
  MembershipConfig cfg;
  const auto result = MembershipSim::run(scripts, cfg, sim::NetConfig{}, 30.0, 8);
  for (const auto& [id, view] : result.final_views) {
    EXPECT_TRUE(std::find(view.begin(), view.end(), 5u) == view.end());
  }
}

}  // namespace
}  // namespace ftbb::gossip
