// Tests of the centralized manager/worker baseline (paper Section 3).
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "central/central.hpp"

namespace ftbb::central {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

BasicTree test_tree(std::uint64_t seed, std::uint64_t nodes = 601) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.cost_mean = 2e-3;
  return BasicTree::random(cfg);
}

CentralConfig fast_config() {
  CentralConfig cfg;
  cfg.batch_size = 4;
  cfg.reissue_timeout = 0.2;
  cfg.audit_interval = 0.1;
  cfg.checkpoint_interval = 0.2;
  cfg.restart_delay = 0.2;
  return cfg;
}

TEST(Central, SolvesWithoutFailures) {
  const BasicTree tree = test_tree(1);
  TreeProblem problem(&tree);
  const CentralResult res =
      CentralSim::run(problem, 4, fast_config(), {}, {}, 120.0, 1);
  EXPECT_TRUE(res.completed);
  ASSERT_TRUE(res.solution_found);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_EQ(res.redundant_expansions, 0u);
}

TEST(Central, ManagerHandlesEveryBatch) {
  const BasicTree tree = test_tree(2, 1001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const CentralResult res =
      CentralSim::run(problem, 4, fast_config(), {}, {}, 120.0, 2);
  ASSERT_TRUE(res.completed);
  // Bottleneck metric: the manager sees at least one message per batch in
  // each direction.
  const std::uint64_t batches =
      (res.total_expanded + fast_config().batch_size - 1) / fast_config().batch_size;
  EXPECT_GE(res.manager_messages, batches);
}

TEST(Central, SurvivesWorkerCrashByReissue) {
  const BasicTree tree = test_tree(3);
  TreeProblem problem(&tree);
  const CentralResult baseline =
      CentralSim::run(problem, 4, fast_config(), {}, {}, 120.0, 3);
  ASSERT_TRUE(baseline.completed);
  const CentralResult res =
      CentralSim::run(problem, 4, fast_config(), {},
                      {{2, baseline.makespan * 0.4}}, 240.0, 3);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Central, ManagerCrashWithoutCheckpointingIsFatal) {
  const BasicTree tree = test_tree(4, 301);
  TreeProblem problem(&tree);
  const CentralResult baseline =
      CentralSim::run(problem, 3, fast_config(), {}, {}, 120.0, 4);
  ASSERT_TRUE(baseline.completed);
  const CentralResult res =
      CentralSim::run(problem, 3, fast_config(), {},
                      {{0, baseline.makespan * 0.3}}, 20.0, 4);
  EXPECT_FALSE(res.completed);
}

TEST(Central, ManagerCrashWithCheckpointingRecovers) {
  const BasicTree tree = test_tree(5, 301);
  TreeProblem problem(&tree);
  CentralConfig cfg = fast_config();
  cfg.checkpointing = true;
  const CentralResult baseline =
      CentralSim::run(problem, 3, cfg, {}, {}, 120.0, 5);
  ASSERT_TRUE(baseline.completed);
  const CentralResult res = CentralSim::run(
      problem, 3, cfg, {}, {{0, baseline.makespan * 0.5}}, 240.0, 5);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_EQ(res.manager_restarts, 1u);
  // Progress since the last checkpoint is redone.
  EXPECT_GE(res.total_expanded, baseline.total_expanded);
}

TEST(Central, DeterministicForSeed) {
  const BasicTree tree = test_tree(6);
  TreeProblem problem(&tree);
  const CentralResult a = CentralSim::run(problem, 3, fast_config(), {}, {}, 120.0, 9);
  const CentralResult b = CentralSim::run(problem, 3, fast_config(), {}, {}, 120.0, 9);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_expanded, b.total_expanded);
}

}  // namespace
}  // namespace ftbb::central
