#include <gtest/gtest.h>

#include <algorithm>

#include "bnb/pool.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {
namespace {

using core::PathCode;

Subproblem make(std::initializer_list<std::pair<std::uint32_t, bool>> steps,
                double bound) {
  PathCode code = PathCode::root();
  for (auto [var, bit] : steps) code = code.child(var, bit);
  return Subproblem{code, bound};
}

TEST(ActivePool, BestFirstPopsSmallestBound) {
  ActivePool pool(SelectRule::kBestFirst);
  pool.push(make({{1, false}}, 5.0));
  pool.push(make({{1, true}}, 2.0));
  pool.push(make({{1, false}, {2, false}}, 3.0));
  EXPECT_EQ(pool.pop().bound, 2.0);
  EXPECT_EQ(pool.pop().bound, 3.0);
  EXPECT_EQ(pool.pop().bound, 5.0);
  EXPECT_TRUE(pool.empty());
}

TEST(ActivePool, BestFirstTieBreaksDeeper) {
  ActivePool pool(SelectRule::kBestFirst);
  pool.push(make({{1, false}}, 1.0));
  pool.push(make({{1, true}, {2, false}}, 1.0));
  EXPECT_EQ(pool.pop().code.depth(), 2u);
}

TEST(ActivePool, DepthFirstPopsDeepest) {
  ActivePool pool(SelectRule::kDepthFirst);
  pool.push(make({{1, false}}, 0.0));
  pool.push(make({{1, false}, {2, false}, {3, false}}, 9.0));
  pool.push(make({{1, false}, {2, true}}, 1.0));
  EXPECT_EQ(pool.pop().code.depth(), 3u);
  EXPECT_EQ(pool.pop().code.depth(), 2u);
  EXPECT_EQ(pool.pop().code.depth(), 1u);
}

TEST(ActivePool, BreadthFirstPopsShallowest) {
  ActivePool pool(SelectRule::kBreadthFirst);
  pool.push(make({{1, false}, {2, false}}, 0.0));
  pool.push(make({{1, true}}, 9.0));
  EXPECT_EQ(pool.pop().code.depth(), 1u);
  EXPECT_EQ(pool.pop().code.depth(), 2u);
}

TEST(ActivePool, PopOrderIsDeterministicForTies) {
  // Identical (bound, depth): code order decides deterministically.
  for (int trial = 0; trial < 2; ++trial) {
    ActivePool pool(SelectRule::kBestFirst);
    pool.push(make({{1, true}}, 1.0));
    pool.push(make({{1, false}}, 1.0));
    EXPECT_EQ(pool.pop().code, PathCode::root().child(1, false));
  }
}

TEST(ActivePool, HeapSurvivesManyRandomOps) {
  support::Rng rng(99);
  ActivePool pool(SelectRule::kBestFirst);
  double last = -1.0;
  int pops = 0;
  for (int i = 0; i < 5000; ++i) {
    if (pool.empty() || rng.chance(0.6)) {
      pool.push(make({{static_cast<std::uint32_t>(i), false}},
                     rng.uniform(0.0, 100.0)));
      last = -1.0;  // heap changed; ordering restarts
    } else {
      const double b = pool.pop().bound;
      if (last >= 0.0) {
        EXPECT_GE(b, last);
      }
      last = b;
      ++pops;
    }
  }
  EXPECT_GT(pops, 100);
}

TEST(ActivePool, RemoveIfFiltersAndReturns) {
  ActivePool pool(SelectRule::kBestFirst);
  for (int i = 0; i < 10; ++i) {
    pool.push(make({{static_cast<std::uint32_t>(i), false}}, double(i)));
  }
  const auto removed =
      pool.remove_if([](const Subproblem& p) { return p.bound >= 5.0; });
  EXPECT_EQ(removed.size(), 5u);
  EXPECT_EQ(pool.size(), 5u);
  // Remaining heap still pops in order.
  double prev = -1.0;
  while (!pool.empty()) {
    const double b = pool.pop().bound;
    EXPECT_GT(b, prev);
    EXPECT_LT(b, 5.0);
    prev = b;
  }
}

TEST(ActivePool, RemoveIfNothingMatchesKeepsPool) {
  ActivePool pool(SelectRule::kDepthFirst);
  pool.push(make({{1, false}}, 1.0));
  const auto removed = pool.remove_if([](const Subproblem&) { return false; });
  EXPECT_TRUE(removed.empty());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ActivePool, ExtractForSharingPrefersShallow) {
  ActivePool pool(SelectRule::kBestFirst);
  pool.push(make({{1, false}}, 3.0));                          // depth 1
  pool.push(make({{1, true}, {2, false}}, 1.0));               // depth 2
  pool.push(make({{1, true}, {2, true}, {3, false}}, 0.5));    // depth 3
  const auto given = pool.extract_for_sharing(1);
  ASSERT_EQ(given.size(), 1u);
  EXPECT_EQ(given[0].code.depth(), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ActivePool, ExtractForSharingCapsAtSize) {
  ActivePool pool(SelectRule::kBestFirst);
  pool.push(make({{1, false}}, 3.0));
  const auto given = pool.extract_for_sharing(10);
  EXPECT_EQ(given.size(), 1u);
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.extract_for_sharing(3).empty());
}

TEST(ActivePool, BestBound) {
  ActivePool pool(SelectRule::kDepthFirst);
  EXPECT_EQ(pool.best_bound(), kInfinity);
  pool.push(make({{1, false}}, 4.0));
  pool.push(make({{1, true}}, 2.0));
  EXPECT_EQ(pool.best_bound(), 2.0);
}

TEST(ActivePool, PruneAboveRemovesThresholdTail) {
  ActivePool pool(SelectRule::kBestFirst);
  for (int i = 0; i < 10; ++i) {
    pool.push(make({{static_cast<std::uint32_t>(i), false}}, double(i)));
  }
  const auto removed = pool.prune_above(5.0);
  EXPECT_EQ(removed.size(), 5u);
  for (const Subproblem& p : removed) EXPECT_GE(p.bound, 5.0);
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_TRUE(pool.prune_above(5.0).empty());
  pool.check_invariants();
}

TEST(ActivePool, RemoveCoveredByPrunesRegionSubtrees) {
  ActivePool pool(SelectRule::kBestFirst);
  pool.push(make({{1, false}}, 1.0));
  pool.push(make({{1, false}, {2, false}}, 2.0));
  pool.push(make({{1, false}, {2, true}, {3, false}}, 3.0));
  pool.push(make({{1, true}}, 4.0));
  const PathCode region = PathCode::root().child(1, false);
  const auto removed = pool.remove_covered_by(std::vector<PathCode>{region});
  EXPECT_EQ(removed.size(), 3u);
  for (const Subproblem& p : removed) EXPECT_TRUE(region.contains(p.code));
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.pop().code, PathCode::root().child(1, true));
  // Nested (non-antichain) regions must not double-remove.
  pool.push(make({{1, false}}, 1.0));
  pool.push(make({{1, false}, {2, false}}, 2.0));
  const auto nested = pool.remove_covered_by(std::vector<PathCode>{
      region, region.child(2, false), PathCode::root()});
  EXPECT_EQ(nested.size(), 2u);
  EXPECT_TRUE(pool.empty());
}

TEST(ActivePool, SnapshotIsCodeSorted) {
  ActivePool pool(SelectRule::kDepthFirst);
  pool.push(make({{2, true}}, 3.0));
  pool.push(make({{1, false}, {2, false}}, 1.0));
  pool.push(make({{1, false}}, 2.0));
  const auto snap = pool.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_TRUE(snap[i - 1].code < snap[i].code);
  }
  EXPECT_EQ(pool.size(), 3u);  // snapshot does not disturb the pool
}

TEST(ActivePool, IndexActivationRoundTripsThroughThreshold) {
  // Grow far past the build threshold, shrink to empty, and verify ordering
  // and structure at every transition.
  support::Rng rng(4242);
  ActivePool pool(SelectRule::kBestFirst);
  EXPECT_FALSE(pool.indexed());
  for (int i = 0; i < 3000; ++i) {
    pool.push(make({{static_cast<std::uint32_t>(i % 97), i % 2 == 0},
                    {static_cast<std::uint32_t>(i % 31), i % 3 == 0}},
                   rng.uniform(0.0, 100.0)));
  }
  EXPECT_TRUE(pool.indexed());
  pool.check_invariants();
  const auto shared = pool.extract_for_sharing(40);
  EXPECT_EQ(shared.size(), 40u);
  const auto pruned = pool.prune_above(80.0);
  EXPECT_GT(pruned.size(), 0u);
  pool.check_invariants();
  double last = -1.0;
  while (!pool.empty()) {
    const double b = pool.pop().bound;
    EXPECT_GE(b, last);
    EXPECT_LT(b, 80.0);
    last = b;
  }
  EXPECT_FALSE(pool.indexed());
  EXPECT_EQ(pool.best_bound(), kInfinity);
  pool.check_invariants();
}

TEST(ActivePoolDeath, PopEmptyAborts) {
  ActivePool pool(SelectRule::kBestFirst);
  ASSERT_DEATH((void)pool.pop(), "pop from empty pool");
}

}  // namespace
}  // namespace ftbb::bnb
