// Differential test: the indexed ActivePool against the seed flat-heap pool.
//
// The worker's completion pipeline observably depends not just on pop order
// but on the heap-array order in which removals report their victims (report
// batching, contraction charges, last-local-completion tracking). These
// tests therefore assert *operation-for-operation identity* — same pop
// sequence, same victim vectors in the same order, same extraction sets —
// over long randomized mixed op streams, for all three SelectRules.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench/legacy_pool.hpp"
#include "bnb/pool.hpp"
#include "core/code_set.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {
namespace {

using bench::LegacyPool;
using core::CodeSet;
using core::PathCode;

PathCode random_code(support::Rng& rng, std::size_t max_depth) {
  const std::size_t depth = rng.pick(max_depth + 1);
  PathCode code = PathCode::root();
  for (std::size_t d = 0; d < depth; ++d) {
    // Few distinct variables per level -> dense sibling/ancestor collisions.
    code = code.child(static_cast<std::uint32_t>(d * 3 + rng.pick(2)),
                      rng.chance(0.5));
  }
  return code;
}

Subproblem random_problem(support::Rng& rng) {
  // Coarse bounds provoke ties; ties exercise the code/seq tie-breaks.
  return Subproblem{random_code(rng, 10),
                    static_cast<double>(rng.pick(64))};
}

/// Codes compatible with a single underlying search tree (every node at
/// depth d branches on variable d) — required by CodeSet's consistency
/// checks in the table-driven test below.
PathCode tree_code(support::Rng& rng, std::size_t max_depth) {
  const std::size_t depth = rng.pick(max_depth + 1);
  PathCode code = PathCode::root();
  for (std::size_t d = 0; d < depth; ++d) {
    code = code.child(static_cast<std::uint32_t>(d), rng.chance(0.5));
  }
  return code;
}

void expect_same(const std::vector<Subproblem>& a,
                 const std::vector<Subproblem>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " diverged at victim " << i;
  }
}

class PoolDiff : public ::testing::TestWithParam<SelectRule> {};

TEST_P(PoolDiff, MixedOpStreamIsOperationIdentical) {
  const SelectRule rule = GetParam();
  support::Rng rng(0xF00D + static_cast<std::uint64_t>(rule));
  ActivePool pool(rule);
  LegacyPool legacy(rule);

  for (int step = 0; step < 20000; ++step) {
    const double dice = rng.uniform();
    if (pool.empty() || dice < 0.50) {
      Subproblem p = random_problem(rng);
      legacy.push(p);
      pool.push(std::move(p));
    } else if (dice < 0.72) {
      EXPECT_EQ(pool.pop(), legacy.pop()) << "pop diverged at step " << step;
    } else if (dice < 0.82) {
      const double threshold = static_cast<double>(rng.pick(72));
      const auto got = pool.prune_above(threshold);
      const auto want = legacy.remove_if(
          [threshold](const Subproblem& p) { return p.bound >= threshold; });
      expect_same(got, want, "prune_above");
    } else if (dice < 0.92) {
      // Covered sweep over a few random regions (including nested ones —
      // remove_covered_by must deduplicate overlapping scans).
      std::vector<PathCode> regions;
      const std::size_t n_regions = 1 + rng.pick(3);
      for (std::size_t i = 0; i < n_regions; ++i) {
        regions.push_back(random_code(rng, 6));
      }
      const auto got = pool.remove_covered_by(regions);
      const auto want = legacy.remove_if([&regions](const Subproblem& p) {
        return std::any_of(regions.begin(), regions.end(),
                           [&p](const PathCode& r) { return r.contains(p.code); });
      });
      expect_same(got, want, "remove_covered_by");
    } else {
      const std::size_t k = 1 + rng.pick(8);
      expect_same(pool.extract_for_sharing(k), legacy.extract_for_sharing(k),
                  "extract_for_sharing");
    }
    ASSERT_EQ(pool.size(), legacy.size());
    ASSERT_EQ(pool.best_bound(), legacy.best_bound());
    if (step % 1024 == 0) pool.check_invariants();
  }

  // The snapshot is the code-sorted view of the same contents.
  std::vector<Subproblem> sorted = legacy.entries();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Subproblem& a, const Subproblem& b) {
                     return a.code < b.code;
                   });
  expect_same(pool.snapshot(), sorted, "snapshot");

  while (!legacy.empty()) {
    EXPECT_EQ(pool.pop(), legacy.pop()) << "drain diverged";
  }
  EXPECT_TRUE(pool.empty());
  pool.check_invariants();
}

TEST_P(PoolDiff, LazyNurseryDrainIsOperationIdentical) {
  // Drives the nursery through its lazy lifecycle explicitly: a bulk load
  // far past the index-build threshold (everything sits in the nursery),
  // the one tolerated bulky query scan, the drain on the second query, and
  // then removal flavors whose victim sets span tree residents and fresh
  // nursery residents — all of it operation-identical to the seed pool,
  // victim order included.
  const SelectRule rule = GetParam();
  support::Rng rng(0xAB5EED + static_cast<std::uint64_t>(rule));
  ActivePool pool(rule);
  LegacyPool legacy(rule);

  // Continuous bounds: at this pool size the coarse pick(64) bounds breed
  // exact (depth, bound, code) duplicates, and the seed reference's
  // extraction order is unspecified across such twins (see
  // legacy_pool.hpp). Tie behavior is MixedOpStream's job; this test pins
  // the nursery lifecycle.
  const auto push_batch = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Subproblem p{random_code(rng, 10), rng.uniform()};
      legacy.push(p);
      pool.push(std::move(p));
    }
  };

  // Bulk load: no query has run, so every entry is nursery-resident.
  push_batch(2000);
  pool.check_invariants();

  // First query after the load tolerates the oversized nursery scan;
  // the second drains it into the trees. Identical answers either side.
  EXPECT_EQ(pool.best_bound(), legacy.best_bound());
  pool.check_invariants();
  EXPECT_EQ(pool.best_bound(), legacy.best_bound());
  pool.check_invariants();

  // Steady-state rounds: top up (fresh nursery residents), then remove in
  // every flavor — victims interleave drained and undrained entries, and
  // their reported order must match the seed heap-array order exactly.
  for (int round = 0; round < 6; ++round) {
    push_batch(300);
    const double threshold = 0.6 + 0.4 * rng.uniform();
    expect_same(pool.prune_above(threshold),
                legacy.remove_if([threshold](const Subproblem& p) {
                  return p.bound >= threshold;
                }),
                "lazy prune_above");
    push_batch(200);
    std::vector<PathCode> regions;
    for (std::size_t i = 0; i < 2; ++i) regions.push_back(random_code(rng, 5));
    expect_same(pool.remove_covered_by(regions),
                legacy.remove_if([&regions](const Subproblem& p) {
                  return std::any_of(
                      regions.begin(), regions.end(),
                      [&p](const PathCode& r) { return r.contains(p.code); });
                }),
                "lazy remove_covered_by");
    const std::size_t k = 1 + rng.pick(32);
    expect_same(pool.extract_for_sharing(k), legacy.extract_for_sharing(k),
                "lazy extract_for_sharing");
    ASSERT_EQ(pool.size(), legacy.size());
    ASSERT_EQ(pool.best_bound(), legacy.best_bound());
    pool.check_invariants();
  }

  // Recycled restart: clear both, reload, and re-verify — entry recycling
  // and the fresh nursery must not perturb any observable.
  pool.clear();
  legacy.clear();
  EXPECT_TRUE(pool.empty());
  push_batch(1500);
  pool.check_invariants();
  while (!legacy.empty()) {
    EXPECT_EQ(pool.pop(), legacy.pop()) << "post-clear drain diverged";
  }
  EXPECT_TRUE(pool.empty());
  pool.check_invariants();
}

TEST_P(PoolDiff, CoveredSweepWithTableHintsMatchesFullScan) {
  // Reproduces the worker's discipline: every push is covered-checked
  // against the table first, and every table insertion while the pool is
  // non-empty records a hint. A sweep over the hints' covering codes must
  // then remove exactly the entries a full table_.covered() scan would.
  const SelectRule rule = GetParam();
  support::Rng rng(0xBEEF + static_cast<std::uint64_t>(rule));
  ActivePool pool(rule);
  LegacyPool legacy(rule);
  CodeSet table;
  std::vector<PathCode> hints;

  for (int step = 0; step < 8000; ++step) {
    const double dice = rng.uniform();
    if (pool.empty() || dice < 0.55) {
      Subproblem p{tree_code(rng, 10), static_cast<double>(rng.pick(64))};
      if (table.covered(p.code)) continue;  // the worker's push guard
      legacy.push(p);
      pool.push(std::move(p));
    } else if (dice < 0.75) {
      EXPECT_EQ(pool.pop(), legacy.pop());
    } else if (dice < 0.95) {
      // A "completion" lands in the table (local or via report).
      const PathCode code = tree_code(rng, 8);
      const CodeSet::InsertResult r = table.insert(code);
      if (r.newly_covered && !pool.empty()) hints.push_back(code);
    } else {
      // Sweep: hints -> covering codes -> indexed range removal.
      std::vector<PathCode> regions;
      for (const PathCode& h : hints) {
        std::optional<PathCode> cover = table.covering_code(h);
        regions.push_back(cover.has_value() ? std::move(*cover) : h);
      }
      hints.clear();
      std::sort(regions.begin(), regions.end());
      regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
      const auto got = pool.remove_covered_by(regions);
      const auto want = legacy.remove_if(
          [&table](const Subproblem& p) { return table.covered(p.code); });
      expect_same(got, want, "hinted covered sweep");
    }
    ASSERT_EQ(pool.size(), legacy.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, PoolDiff,
                         ::testing::Values(SelectRule::kBestFirst,
                                           SelectRule::kDepthFirst,
                                           SelectRule::kBreadthFirst),
                         [](const auto& info) {
                           switch (info.param) {
                             case SelectRule::kBestFirst: return "BestFirst";
                             case SelectRule::kDepthFirst: return "DepthFirst";
                             case SelectRule::kBreadthFirst: return "BreadthFirst";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ftbb::bnb
