// Tests of the real-time (thread-backed) runtime hosting the identical
// worker protocol. Runs are nondeterministic; assertions target protocol
// correctness (optimum, termination, crash survival), never timing.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "fault/schedule.hpp"
#include "rt/runtime.hpp"
#include "sim/fault_plan.hpp"

namespace ftbb::rt {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

RtConfig fast_config(std::uint32_t workers, std::uint64_t seed) {
  RtConfig cfg;
  cfg.workers = workers;
  cfg.seed = seed;
  cfg.wall_timeout = 90.0;
  cfg.time_scale = 1.0;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.02;
  cfg.worker.table_gossip_interval = 0.05;
  cfg.worker.work_request_timeout = 0.01;
  cfg.worker.idle_backoff = 0.004;
  cfg.worker.initial_stagger = 0.002;
  return cfg;
}

BasicTree tiny_tree(std::uint64_t seed, std::uint64_t nodes = 401) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.cost_mean = 1e-4;  // ~40 ms of total virtual work
  return BasicTree::random(cfg);
}

TEST(Rt, SingleThreadSolves) {
  const BasicTree tree = tiny_tree(1, 201);
  TreeProblem problem(&tree);
  const RtResult res = Cluster::run(problem, fast_config(1, 1));
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Rt, FourThreadsSolveTree) {
  const BasicTree tree = tiny_tree(2);
  TreeProblem problem(&tree);
  const RtResult res = Cluster::run(problem, fast_config(4, 2));
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_GT(res.net.messages_delivered, 0u);
}

TEST(Rt, KnapsackMatchesDp) {
  const auto inst = bnb::KnapsackInstance::strongly_correlated(14, 50, 0.5, 3);
  bnb::NodeCostModel cost;
  cost.mean = 1e-4;
  bnb::KnapsackModel model(inst, cost);
  ASSERT_TRUE(model.known_optimal().has_value());
  const RtResult res = Cluster::run(model, fast_config(4, 3));
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, *model.known_optimal());
}

TEST(Rt, SurvivesWorkerCrashes) {
  const BasicTree tree = tiny_tree(4, 801);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(4, 4);
  // Kill two workers early, while work is still spreading.
  cfg.faults.crashes = {{1, 0.01}, {3, 0.02}};
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_TRUE(res.crashed[1]);
  EXPECT_TRUE(res.crashed[3]);
  EXPECT_EQ(res.reaped, res.incarnations);
}

TEST(Rt, SurvivesMessageLoss) {
  const BasicTree tree = tiny_tree(5);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(3, 5);
  cfg.net.loss_prob = 0.1;
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Rt, LatencyDelaysDoNotBreakCorrectness) {
  const BasicTree tree = tiny_tree(6);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(3, 6);
  cfg.net.latency_fixed = 0.002;
  cfg.net.latency_per_byte = 1e-7;
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Rt, CrashedWorkerRejoinsAsFreshIncarnation) {
  // Big enough (~0.4s of virtual work) that the crash lands mid-search on
  // any scheduler interleaving, never after termination.
  const BasicTree tree = tiny_tree(8, 4001);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(4, 8);
  // Worker 1 bounces: killed early, back 100 ms later as a new incarnation
  // that re-enters through the normal load-balancing path.
  cfg.faults.crashes = {{1, 0.02}};
  cfg.faults.revives = {{1, 0.12}};
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_TRUE(res.crashed[1]);
  // The bounce spawned a second incarnation and both threads were reaped.
  EXPECT_GE(res.incarnations_per_worker[1], 2u);
  EXPECT_EQ(res.reaped, res.incarnations);
}

TEST(Rt, ChurnArrivalsJoinLate) {
  const BasicTree tree = tiny_tree(9, 801);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(2, 9);
  // Two extra members trickle in while the original pair is mid-search.
  sim::FaultPlan plan;
  plan.churn(2, 2, 0.02, 0.03);
  cfg.faults = fault::FaultSchedule::compile(plan, cfg.workers);
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  ASSERT_EQ(res.workers.size(), 4u);  // population grew to 4
  EXPECT_EQ(res.reaped, res.incarnations);
}

TEST(Rt, WindowedLinkLossAndPartitionReplay) {
  const BasicTree tree = tiny_tree(10, 801);
  TreeProblem problem(&tree);
  RtConfig cfg = fast_config(4, 10);
  sim::FaultPlan plan;
  plan.link_loss(0, 1, 0.0, 0.2, 0.6);
  plan.split_halves(0.02, 0.1);
  cfg.faults = fault::FaultSchedule::compile(plan, cfg.workers);
  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Rt, StatsAreCollected) {
  const BasicTree tree = tiny_tree(7);
  TreeProblem problem(&tree);
  const RtResult res = Cluster::run(problem, fast_config(3, 7));
  ASSERT_TRUE(res.all_live_halted);
  std::uint64_t total_expanded = 0;
  for (const auto& w : res.workers) {
    total_expanded += w.expanded;
    EXPECT_GE(w.time[0], 0.0);
  }
  // Every node of the tree was expanded at least once (bounds honored, so
  // some are eliminated; at minimum the feasible optimum path was walked).
  EXPECT_GT(total_expanded, 0u);
}

}  // namespace
}  // namespace ftbb::rt
